// Fleet failover sweep: cluster-policy ablation under deterministic fault
// injection (src/fleet/fault_injector.h).
//
// A mixed population (LLC trashers, cache-sensitive work, bandwidth
// streamers and checkpointing HPC jobs) is policy-placed across the fleet,
// then hosts crash, migrations abort mid-transfer and hosts degrade on the
// injector's pre-drawn schedule. The ablation crosses the three cluster
// policies with two fault intensities and the retry-backoff switch; the
// `failover/control` cell runs the identical scenario with a zero-fault
// plan, so the committed golden pins the bit-identity contract (a control
// cell must match the same fleet built without the fault subsystem —
// tests/fleet_fault_test.cc asserts the stronger form).
//
// One extra recognition cell runs checkpoint_restart in the extended
// validation rig under AQL_Sched — the app was added after table3x's golden
// was committed, so its detected-vs-expected row lives here (cell-ID
// stability rules, docs/BENCH_FORMAT.md).

#include <string>
#include <vector>

#include "src/core/cursors.h"
#include "src/experiment/registry.h"
#include "src/metrics/table.h"
#include "src/workload/catalog.h"

namespace aql {
namespace {

// vCPU-weighted mean primary cost over the per-application fleet groups
// (host/fleet bookkeeping groups excluded).
double AggregateCost(const ScenarioResult& r) {
  double weighted = 0.0;
  double vcpus = 0.0;
  for (const GroupPerf& g : r.groups) {
    if (g.name == "fleet" || g.name.rfind("host", 0) == 0) {
      continue;
    }
    weighted += g.primary * g.vcpus;
    vcpus += g.vcpus;
  }
  return vcpus > 0 ? weighted / vcpus : 0.0;
}

const char* const kPolicies[] = {"naive", "mem_pressure", "cache_aware"};
const char* const kIntensities[] = {"low", "high"};
const char* const kBackoffs[] = {"bk", "nobk"};

ClusterPolicy PolicyOf(const std::string& tag) {
  if (tag == "naive") {
    return ClusterPolicy::kNaive;
  }
  if (tag == "mem_pressure") {
    return ClusterPolicy::kMemPressure;
  }
  return ClusterPolicy::kCacheAware;
}

// The ablated fault plans. Rates are per host per simulated second, so the
// quick golden (shorter windows, fewer hosts) sees proportionally fewer
// faults — what matters there is schedule determinism, not drama.
FleetFaultPlan PlanOf(const std::string& intensity, bool backoff, TimeNs epoch) {
  FleetFaultPlan plan;
  plan.crash_rate_per_host_per_sec = intensity == "high" ? 0.25 : 0.10;
  plan.migration_failure_prob = intensity == "high" ? 0.5 : 0.25;
  if (intensity == "high") {
    plan.degrade_rate_per_host_per_sec = 0.08;
    plan.degraded_bw_scale = 0.6;
    plan.degraded_pcpu_drop = 1;
  }
  plan.backoff = backoff;
  // 1.5 epochs in either mode, so a backed-off retry skips a boundary that
  // an immediate retry catches — a base at or below the epoch would make
  // the bk/nobk cells indistinguishable (retries only fire at boundaries).
  plan.backoff_base = epoch + epoch / 2;
  return plan;
}

std::vector<VmSpec> MixedVms(int hosts) {
  // Four VMs per host drawn from a repeating 8-app cycle: trashers and
  // streamers to provoke rebalancing (and therefore migration failures),
  // cache-sensitive work to make placement matter, and checkpointing HPC
  // jobs whose durable state exercises crash recovery.
  static const char* const kMix[] = {"libquantum", "bzip2",  "checkpoint_restart",
                                     "hmmer",      "stream_triad", "bzip2",
                                     "hmmer",      "checkpoint_restart"};
  std::vector<VmSpec> vms;
  const int count = hosts * 4;
  for (int i = 0; i < count; ++i) {
    vms.push_back(VmSpec{kMix[i % 8], 1});
  }
  return vms;
}

std::vector<SweepCell> Build(const SweepOptions& opts) {
  const int hosts = opts.quick ? 6 : 16;
  const TimeNs epoch = opts.quick ? Ms(100) : Ms(250);
  const std::vector<VmSpec> vms = MixedVms(hosts);

  std::vector<SweepCell> cells;
  auto add = [&](const std::string& id, ClusterPolicy cluster,
                 const FleetFaultPlan& plan) {
    SweepCell cell;
    // Id scheme: failover/<policy>/<intensity>/<bk|nobk> plus the control
    // and recognition cells. Ids are shard/merge/cache keys; keep them
    // stable (docs/BENCH_FORMAT.md, "Cell-ID stability rules").
    cell.id = id;
    cell.scenario =
        FleetScenario("failover/" + std::to_string(hosts) + "h", hosts, vms, cluster);
    cell.scenario.warmup = opts.Warmup(Sec(1));
    cell.scenario.measure = opts.Measure(Sec(4));
    cell.scenario.fleet.epoch = epoch;
    cell.scenario.fleet.max_migrations_per_epoch = opts.quick ? 4 : 8;
    cell.scenario.fleet.fault = plan;
    cell.policy = PolicySpec::Xen();
    cells.push_back(std::move(cell));
  };

  // Zero-fault control: same fleet, default (inert) plan. Its committed
  // golden bytes pin the "fault subsystem off = fault subsystem absent"
  // contract at the sweep level.
  add("failover/control", ClusterPolicy::kCacheAware, FleetFaultPlan{});
  for (const char* policy : kPolicies) {
    for (const char* intensity : kIntensities) {
      for (const char* backoff : kBackoffs) {
        add("failover/" + std::string(policy) + "/" + intensity + "/" + backoff,
            PolicyOf(policy),
            PlanOf(intensity, backoff == std::string("bk"), epoch));
      }
    }
  }

  // checkpoint_restart recognition (table3x-style): the app joined
  // ExtendedCatalog() after that sweep's golden was committed, so it is
  // pinned out there and validated here instead.
  SweepCell rec;
  rec.id = "failover/rec/checkpoint_restart";
  rec.scenario = ExtendedValidationRig("checkpoint_restart");
  rec.scenario.warmup = opts.Warmup(Sec(1));
  rec.scenario.measure = opts.Measure(Sec(5));
  rec.policy = PolicySpec::Aql();
  rec.trace_cursors = true;
  cells.push_back(std::move(rec));
  return cells;
}

void Render(SweepContext& ctx) {
  TextTable table({"policy", "intensity", "backoff", "agg cost", "avail", "crashes",
                   "restarts", "mig fail", "retries", "abandoned"});
  for (const char* policy : kPolicies) {
    for (const char* intensity : kIntensities) {
      for (const char* backoff : kBackoffs) {
        const std::string id =
            "failover/" + std::string(policy) + "/" + intensity + "/" + backoff;
        const ScenarioResult& r = ctx.Result(id);
        const GroupPerf& fleet = FindGroup(r.groups, "fleet");
        const double cost = AggregateCost(r);
        table.AddRow({policy, intensity, backoff, TextTable::Num(cost, 3),
                      TextTable::Num(fleet.Metric("availability"), 4),
                      TextTable::Num(fleet.Metric("crashes"), 0),
                      TextTable::Num(fleet.Metric("vm_restarts"), 0),
                      TextTable::Num(fleet.Metric("migration_failures"), 0),
                      TextTable::Num(fleet.Metric("migration_retries"), 0),
                      TextTable::Num(fleet.Metric("migrations_abandoned"), 0)});
        const std::string key = std::string(policy) + "_" + intensity + "_" + backoff;
        ctx.Summary("failover_cost_" + key, cost);
        ctx.Summary("failover_availability_" + key, fleet.Metric("availability"));
        ctx.Summary("failover_crashes_" + key, fleet.Metric("crashes"));
      }
    }
  }
  ctx.AddTable(
      "Fleet failover: cluster-policy ablation under fault injection "
      "(availability is vCPU-time not lost to crash recovery)",
      table);

  const double control_cost = AggregateCost(ctx.Result("failover/control"));
  ctx.Summary("failover_cost_control", control_cost);
  ctx.Print("zero-fault control agg cost: " + std::to_string(control_cost) + "\n");

  // Recognition row for checkpoint_restart (see Build).
  const AppProfile* app = nullptr;
  for (const AppProfile& a : ExtendedCatalog()) {
    if (a.name == "checkpoint_restart") {
      app = &a;
    }
  }
  if (app != nullptr) {
    const CellResult& cell = ctx.Cell("failover/rec/checkpoint_restart");
    const VcpuType detected = cell.result.detected_types.at(0);
    const CursorSet avg =
        cell.cursor_trace.empty() ? CursorSet{} : cell.cursor_trace.back();
    const bool ok = detected == app->expected_type;
    TextTable rec({"application", "suite", "expected", "detected", "IO", "ConSpin",
                   "LoLCF", "LLCF", "LLCO", "MemBw", "Remote", "Bursty", "ok"});
    rec.AddRow({app->name, app->suite, VcpuTypeName(app->expected_type),
                VcpuTypeName(detected), TextTable::Num(avg.io, 0),
                TextTable::Num(avg.conspin, 0), TextTable::Num(avg.lolcf, 0),
                TextTable::Num(avg.llcf, 0), TextTable::Num(avg.llco, 0),
                TextTable::Num(avg.membw, 0), TextTable::Num(avg.remote, 0),
                TextTable::Num(avg.bursty, 0), ok ? "yes" : "NO"});
    ctx.AddTable("vTRS recognition: checkpoint_restart (pinned out of table3x)", rec);
    ctx.Summary("recognized_checkpoint_restart", ok ? 1 : 0);
  }
}

SweepSpec Spec() {
  SweepSpec spec;
  spec.name = "fleet_failover";
  spec.description =
      "Fleet: fault-injection ablation (policy x intensity x backoff) plus "
      "zero-fault control and checkpoint_restart recognition";
  spec.build = Build;
  spec.render = Render;
  return spec;
}

AQL_REGISTER_SWEEP(Spec);

}  // namespace
}  // namespace aql
