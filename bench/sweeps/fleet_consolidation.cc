// Fleet consolidation sweep: packing density vs. aggregate normalized
// performance.
//
// A fixed VM population (FleetWorkloadMix: 3/8 cache/bandwidth-destructive)
// is spread over progressively fewer hosts — the consolidation decision
// every capacity planner faces — with AQL running per host. The aggregate
// vCPU-weighted cost of the dense packings, normalized to the sparse one,
// is the price of density under contention. The sparse quick cell runs 100
// hosts (the CI-scale fleet cell); full mode tops out at 1024 hosts /
// 4096 VMs per cell (12k+ simulated vCPUs across the ladder).

#include <string>
#include <vector>

#include "src/experiment/registry.h"
#include "src/metrics/table.h"

namespace aql {
namespace {

struct Rung {
  const char* tag;
  int quick_hosts;
  int full_hosts;
};

// Density ladder, sparse to dense (quick: 256 VMs; full: 4096 VMs).
const Rung kLadder[] = {
    {"sparse", 100, 1024},
    {"mid", 32, 512},
    {"dense", 16, 256},
};

double AggregateCost(const ScenarioResult& r) {
  double weighted = 0.0;
  double vcpus = 0.0;
  for (const GroupPerf& g : r.groups) {
    if (g.name == "fleet" || g.name.rfind("host", 0) == 0) {
      continue;
    }
    weighted += g.primary * g.vcpus;
    vcpus += g.vcpus;
  }
  return vcpus > 0 ? weighted / vcpus : 0.0;
}

std::vector<SweepCell> Build(const SweepOptions& opts) {
  const int vm_count = opts.quick ? 256 : 4096;
  const std::vector<VmSpec> vms = FleetWorkloadMix(vm_count);
  std::vector<SweepCell> cells;
  for (const Rung& rung : kLadder) {
    const int hosts = opts.quick ? rung.quick_hosts : rung.full_hosts;
    SweepCell cell;
    // Id scheme: consolidation/<density-tag> — stable across quick/full so
    // shard membership and cache keys line up (docs/BENCH_FORMAT.md).
    cell.id = "consolidation/" + std::string(rung.tag);
    cell.scenario = FleetScenario("consolidation/" + std::to_string(hosts) + "h", hosts,
                                  vms, ClusterPolicy::kNaive);
    cell.scenario.warmup = opts.Warmup(Sec(1));
    cell.scenario.measure = opts.Measure(Sec(4));
    cell.scenario.fleet.epoch = Ms(250);  // no rebalancing: coarse grid is fine
    cell.policy = PolicySpec::Aql();
    cells.push_back(std::move(cell));
  }
  return cells;
}

void Render(SweepContext& ctx) {
  TextTable table({"packing", "hosts", "vcpus/pcpu", "agg cost", "vs sparse",
                   "fleet util"});
  const double sparse_cost = AggregateCost(ctx.Result("consolidation/sparse"));
  for (const Rung& rung : kLadder) {
    const ScenarioResult& r = ctx.Result("consolidation/" + std::string(rung.tag));
    const double cost = AggregateCost(r);
    const double penalty = sparse_cost > 0 ? cost / sparse_cost : 0.0;
    const GroupPerf& fleet = FindGroup(r.groups, "fleet");
    const double hosts = fleet.Metric("hosts");
    const double density =
        hosts > 0 ? static_cast<double>(fleet.vcpus) / (hosts * 4.0) : 0.0;
    table.AddRow({rung.tag, TextTable::Num(hosts, 0), TextTable::Num(density, 2),
                  TextTable::Num(cost, 3), TextTable::Num(penalty, 3),
                  TextTable::Num(r.cpu_utilization, 3)});
    ctx.Summary("consolidation_cost_" + std::string(rung.tag), cost);
    ctx.Summary("consolidation_penalty_" + std::string(rung.tag), penalty);
  }
  ctx.AddTable(
      "Fleet consolidation: aggregate cost of packing one VM population onto "
      "fewer hosts (vs sparse > 1 is the density penalty)",
      table);
}

SweepSpec Spec() {
  SweepSpec spec;
  spec.name = "fleet_consolidation";
  spec.description =
      "Fleet: packing-density ladder (100+ hosts) under per-host AQL";
  spec.build = Build;
  spec.render = Render;
  return spec;
}

AQL_REGISTER_SWEEP(Spec);

}  // namespace
}  // namespace aql
