// Regenerates Table 5: the clusters AQL_Sched forms for each colocation
// scenario S1-S5, with per-cluster application membership (by detected
// type), pool quantum and pCPU count.

#include <cstdio>
#include <map>
#include <string>

#include "src/core/aql_controller.h"
#include "src/experiment/runner.h"
#include "src/experiment/scenarios.h"
#include "src/metrics/table.h"
#include "src/workload/catalog.h"

namespace aql {
namespace {

void Run() {
  TextTable table({"scenario", "cluster", "quantum", "#pCPUs", "members (type x count)"});
  for (int s = 1; s <= 5; ++s) {
    ScenarioSpec spec = ColocationScenario(s);
    spec.measure = Sec(6);

    // Re-run with direct access to the final plan via the runner's result.
    Simulation sim(spec.machine.seed);
    Machine machine(sim, spec.machine);
    for (const VmSpec& vs : spec.vms) {
      Vm* vm = machine.AddVm(vs.app, vs.weight, vs.cap_percent);
      for (auto& model : MakeApp(vs.app, vs.vcpus)) {
        machine.AddVcpu(vm, std::move(model));
      }
    }
    auto controller = std::make_unique<AqlController>();
    AqlController* aql = controller.get();
    machine.SetController(std::move(controller));
    machine.Start();
    sim.RunUntil(Sec(4));

    for (const PoolSpec& pool : aql->current_plan().pools) {
      std::map<std::string, int> members;
      for (int vid : pool.vcpus) {
        ++members[VcpuTypeName(aql->TypeOf(vid))];
      }
      std::string member_str;
      for (const auto& [type, count] : members) {
        if (!member_str.empty()) {
          member_str += ", ";
        }
        member_str += std::to_string(count) + " " + type;
      }
      table.AddRow({"S" + std::to_string(s), pool.label,
                    TextTable::Num(ToMs(pool.quantum), 0) + "ms",
                    std::to_string(pool.pcpus.size()), member_str});
    }
  }
  std::printf("Table 5: clustering applied to scenarios S1-S5\n%s\n",
              table.ToString().c_str());
}

}  // namespace
}  // namespace aql

int main() {
  aql::Run();
  return 0;
}
