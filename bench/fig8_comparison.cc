// Regenerates Fig. 8 + Table 6: AQL_Sched against vTurbo, vSlicer and
// Microsliced on scenario S5, normalized to the default Xen scheduler.
//
// Following §4.2, the baselines have no online recognition: their I/O vCPU
// sets are configured manually (the runner passes the ground-truth IOInt
// vCPUs) and both vTurbo and Microsliced use a 1 ms quantum.

#include <cstdio>
#include <string>

#include "src/experiment/runner.h"
#include "src/experiment/scenarios.h"
#include "src/metrics/table.h"
#include "src/workload/catalog.h"

namespace aql {
namespace {

void RunComparison() {
  ScenarioSpec spec = ColocationScenario(5);
  spec.measure = Sec(10);

  ScenarioResult xen = RunScenario(spec, PolicySpec::Xen());
  const PolicySpec policies[] = {PolicySpec::VTurbo(), PolicySpec::Microsliced(),
                                 PolicySpec::VSlicer(), PolicySpec::Aql()};

  TextTable table({"application", "type", "vTurbo", "Microsliced", "vSlicer",
                   "AQL_Sched"});
  std::vector<ScenarioResult> results;
  for (const PolicySpec& p : policies) {
    results.push_back(RunScenario(spec, p));
  }
  for (const GroupPerf& g : xen.groups) {
    std::vector<std::string> row = {g.name, VcpuTypeName(FindApp(g.name).expected_type)};
    for (const ScenarioResult& r : results) {
      row.push_back(TextTable::Num(NormalizedPerf(FindGroup(r.groups, g.name), g), 2));
    }
    table.AddRow(row);
  }
  std::printf("Fig. 8: comparison with existing approaches on S5 "
              "(normalized to Xen 30ms; smaller is better)\n%s\n",
              table.ToString().c_str());
}

void PrintTable6() {
  TextTable table({"solution", "dynamic type recognition", "handled types", "overhead",
                   "hardware modification"});
  table.AddRow({"vTurbo", "not supported", "IO", "no overhead", "no"});
  table.AddRow({"vSlicer", "not supported", "IO", "no overhead", "no"});
  table.AddRow({"Microsliced", "not supported", "IO, spin-lock",
                "overhead for CPU burn", "yes"});
  table.AddRow({"Xen BOOST", "supported", "IO", "no overhead", "no"});
  table.AddRow({"AQL_Sched", "supported", "IO, spin-lock, CPU burn", "no overhead", "no"});
  std::printf("Table 6: qualitative comparison with existing solutions\n%s\n",
              table.ToString().c_str());
}

}  // namespace
}  // namespace aql

int main() {
  aql::RunComparison();
  aql::PrintTable6();
  return 0;
}
